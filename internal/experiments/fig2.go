package experiments

import (
	"dust/internal/vector"
)

// Fig2 reproduces the table-vs-tuple embedding geometry argument (paper
// Fig. 2): embed five sets of unionable tables and their tuples, project
// both to 2-D with PCA, and measure how spread out each population is.
// The paper's observation — tables of a unionable set stay compact while
// their tuples scatter widely — is what justifies diversifying tuples
// rather than tables.
func Fig2(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	b := benchSANTOS()

	// Five unionable sets = five domains' table groups.
	bases := map[string][]int{} // base -> table indices
	tables := b.Lake.Tables()
	for i, t := range tables {
		bases[t.Base] = append(bases[t.Base], i)
	}
	var chosen []string
	for _, t := range tables {
		if len(chosen) == 5 {
			break
		}
		dup := false
		for _, c := range chosen {
			if c == t.Base {
				dup = true
				break
			}
		}
		if !dup {
			chosen = append(chosen, t.Base)
		}
	}

	maxTuplesPerTable := cfg.scale(5, 20)
	var tableVecs, tupleVecs []vector.Vec
	var tableSet, tupleSet []int
	for si, base := range chosen {
		for _, ti := range bases[base][:min2(4, len(bases[base]))] {
			t := tables[ti]
			headers := t.Headers()
			var rows []vector.Vec
			for r := 0; r < t.NumRows() && r < maxTuplesPerTable; r++ {
				v := dustModel.EncodeTuple(headers, t.Row(r))
				rows = append(rows, v)
				tupleVecs = append(tupleVecs, v)
				tupleSet = append(tupleSet, si)
			}
			tableVecs = append(tableVecs, vector.Mean(rows))
			tableSet = append(tableSet, si)
		}
	}

	tablePCA, _ := vector.FitPCA(tableVecs, 2)
	tuplePCA, _ := vector.FitPCA(tupleVecs, 2)
	table2d := tablePCA.TransformAll(tableVecs)
	tuple2d := tuplePCA.TransformAll(tupleVecs)

	tableIntra, tableInter := spread(table2d, tableSet)
	tupleIntra, tupleInter := spread(tuple2d, tupleSet)
	tableRatio := safeDiv(tableIntra, tableInter)
	tupleRatio := safeDiv(tupleIntra, tupleInter)

	r := &Report{
		Title:   "Fig. 2 — PCA spread of table vs tuple embeddings (5 unionable sets)",
		Columns: []string{"Population", "Intra-set dist", "Inter-set dist", "Intra/Inter"},
	}
	r.AddRow("tables", f3(tableIntra), f3(tableInter), f3(tableRatio))
	r.AddRow("tuples", f3(tupleIntra), f3(tupleInter), f3(tupleRatio))
	r.Note("paper shape: tables cluster tightly (low intra/inter) while tuples of the same unionable set scatter — diversifying tuples has far more room than diversifying tables")
	r.Note("shape tuples scatter more: %s (tuple ratio %.3f > table ratio %.3f)",
		passFail(tupleRatio > tableRatio), tupleRatio, tableRatio)
	return r
}

// spread returns the mean intra-set and inter-set pairwise distances of
// 2-d points with set labels.
func spread(pts []vector.Vec, set []int) (intra, inter float64) {
	var nIntra, nInter int
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dd := vector.Euclidean(pts[i], pts[j])
			if set[i] == set[j] {
				intra += dd
				nIntra++
			} else {
				inter += dd
				nInter++
			}
		}
	}
	if nIntra > 0 {
		intra /= float64(nIntra)
	}
	if nInter > 0 {
		inter /= float64(nInter)
	}
	return intra, inter
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
