package experiments

import (
	"math"
	"math/rand"

	"dust/internal/vector"
)

// Fig10 reproduces the column-shuffle robustness experiment (Appendix
// A.2.1): every test tuple is re-encoded with a randomly permuted column
// order and the cosine similarity between original and shuffled embedding
// is reported (paper: mean 0.98, std 0.04).
func Fig10(cfg Config) *Report {
	dustR, _, _, pairs := Models()
	n := cfg.scale(100, len(pairs.Test))
	if n > len(pairs.Test) {
		n = len(pairs.Test)
	}
	rng := rand.New(rand.NewSource(1010))

	var sims []float64
	for _, p := range pairs.Test[:n] {
		h, v := p.Headers1, p.Values1
		perm := rng.Perm(len(h))
		hs := make([]string, len(h))
		vs := make([]string, len(v))
		for i, pi := range perm {
			hs[i] = h[pi]
			vs[i] = v[pi]
		}
		sims = append(sims, vector.Cosine(dustR.EncodeTuple(h, v), dustR.EncodeTuple(hs, vs)))
	}

	var mean, std, min float64
	min = 1
	for _, s := range sims {
		mean += s
		if s < min {
			min = s
		}
	}
	mean /= float64(len(sims))
	for _, s := range sims {
		std += (s - mean) * (s - mean)
	}
	std = math.Sqrt(std / float64(len(sims)))

	r := &Report{
		Title:   "Fig. 10 — Cosine similarity of original vs column-shuffled tuples",
		Columns: []string{"Stat", "Value", "Paper"},
	}
	r.AddRow("mean", f3(mean), "0.98")
	r.AddRow("std", f3(std), "0.04")
	r.AddRow("min", f3(min), "-")
	r.AddRow("tuples", d(len(sims)), "18k")
	r.Note("the featurizer is order-insensitive by construction, so the simulator is exactly invariant where the paper's transformer is approximately invariant")
	r.Note("shape high shuffle similarity: %s (mean %.3f >= 0.95)", passFail(mean >= 0.95), mean)
	return r
}
