package minhash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestExactJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"c", "d"}, 0},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 0.5},
		{nil, nil, 0},
		{[]string{"a", "a", "b"}, []string{"a", "b", "b"}, 1}, // duplicates ignored
	}
	for _, c := range cases {
		if got := ExactJaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExactJaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSignDeterministicAndEmpty(t *testing.T) {
	h := NewHasher(64)
	a := h.Sign([]string{"x", "y"})
	b := h.Sign([]string{"x", "y"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sign nondeterministic")
		}
	}
	empty := h.Sign(nil)
	for _, v := range empty {
		if v != math.MaxUint64 {
			t.Fatal("empty set signature should be all MaxUint64")
		}
	}
}

func TestEstimateApproximatesJaccard(t *testing.T) {
	h := NewHasher(256)
	mk := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return out
	}
	// 50 shared + 50 unique each => J = 50/150 = 1/3.
	a := append(mk("shared", 50), mk("onlyA", 50)...)
	b := append(mk("shared", 50), mk("onlyB", 50)...)
	est := Estimate(h.Sign(a), h.Sign(b))
	want := ExactJaccard(a, b)
	if math.Abs(est-want) > 0.1 {
		t.Errorf("Estimate = %v, exact = %v (tolerance 0.1 at k=256)", est, want)
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	h := NewHasher(16)
	if Estimate(h.Sign([]string{"a"}), Signature{1, 2}) != 0 {
		t.Error("mismatched signature lengths should estimate 0")
	}
	if Estimate(nil, nil) != 0 {
		t.Error("empty signatures should estimate 0")
	}
	s := h.Sign([]string{"a", "b"})
	if Estimate(s, s) != 1 {
		t.Error("identical signatures should estimate 1")
	}
}

func TestNewIndexValidatesBands(t *testing.T) {
	h := NewHasher(64)
	if _, err := NewIndex(h, 7); err == nil {
		t.Error("bands not dividing k should error")
	}
	if _, err := NewIndex(h, 0); err == nil {
		t.Error("zero bands should error")
	}
	if _, err := NewIndex(h, 16); err != nil {
		t.Errorf("valid banding errored: %v", err)
	}
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	h := NewHasher(128)
	idx, err := NewIndex(h, 32) // 32 bands x 4 rows: sensitive at J ~ 0.4+
	if err != nil {
		t.Fatal(err)
	}
	base := make([]string, 100)
	for i := range base {
		base[i] = fmt.Sprintf("val%d", i)
	}
	near := make([]string, 100)
	copy(near, base)
	near[0], near[1] = "chg0", "chg1" // J ~ 0.96
	far := make([]string, 100)
	for i := range far {
		far[i] = fmt.Sprintf("other%d", i)
	}
	idx.Add("near", near)
	idx.Add("far", far)
	if idx.Len() != 2 {
		t.Fatalf("Len = %d", idx.Len())
	}

	cands := idx.Query(base)
	foundNear, foundFar := false, false
	for _, c := range cands {
		switch c.Key {
		case "near":
			foundNear = true
			if c.Estimated < 0.8 {
				t.Errorf("near estimate = %v, want > 0.8", c.Estimated)
			}
		case "far":
			foundFar = true
		}
	}
	if !foundNear {
		t.Error("LSH missed a 0.96-Jaccard near duplicate")
	}
	if foundFar {
		t.Error("LSH returned a 0-Jaccard set as candidate (hash collision across all rows of a band is vanishingly unlikely)")
	}
}

func TestIndexQueryDeduplicatesCandidates(t *testing.T) {
	h := NewHasher(64)
	idx, _ := NewIndex(h, 64) // 1 row per band: everything collides often
	vals := []string{"a", "b", "c"}
	idx.Add("dup", vals)
	cands := idx.Query(vals)
	if len(cands) != 1 {
		t.Errorf("candidates = %v, want exactly one entry per key", cands)
	}
}

// Property: estimate is symmetric and within [0, 1].
func TestEstimateProperties(t *testing.T) {
	h := NewHasher(32)
	f := func(a, b []string) bool {
		sa, sb := h.Sign(a), h.Sign(b)
		e1, e2 := Estimate(sa, sb), Estimate(sb, sa)
		return e1 == e2 && e1 >= 0 && e1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ExactJaccard of a set with itself is 1 (for non-empty sets).
func TestJaccardSelfProperty(t *testing.T) {
	f := func(a []string) bool {
		if len(a) == 0 {
			return ExactJaccard(a, a) == 0
		}
		return ExactJaccard(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexRemove(t *testing.T) {
	h := NewHasher(64)
	idx, err := NewIndex(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	set := func(seed string) []string {
		out := make([]string, 30)
		for i := range out {
			out[i] = fmt.Sprintf("%s-%d", seed, i)
		}
		return out
	}
	// Two signatures under the same key, one under another.
	idx.Add("dup", set("x"))
	idx.Add("dup", set("x"))
	idx.Add("other", set("x"))
	if idx.Len() != 3 {
		t.Fatalf("Len = %d, want 3", idx.Len())
	}
	if n := idx.Remove("dup"); n != 2 {
		t.Errorf("Remove(dup) = %d, want 2", n)
	}
	if n := idx.Remove("dup"); n != 0 {
		t.Errorf("second Remove(dup) = %d, want 0", n)
	}
	if idx.Len() != 1 {
		t.Errorf("Len = %d, want 1", idx.Len())
	}
	for _, c := range idx.Query(set("x")) {
		if c.Key == "dup" {
			t.Error("removed key still returned by Query")
		}
	}
}

func TestIndexRemoveMatchesRebuild(t *testing.T) {
	h := NewHasher(64)
	set := func(seed string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s-%d", seed, i%7)
		}
		return out
	}
	keys := []string{"a", "b", "c", "d", "e", "f"}
	build := func(skip map[string]bool) *Index {
		idx, _ := NewIndex(h, 16)
		for i, k := range keys {
			if !skip[k] {
				idx.Add(k, set(k, 20+i))
			}
		}
		return idx
	}
	// Incrementally remove enough keys to trigger compaction, then compare
	// every query against an index built without them.
	inc := build(nil)
	skip := map[string]bool{"a": true, "c": true, "d": true, "e": true}
	for k := range skip {
		inc.Remove(k)
	}
	fresh := build(skip)
	if inc.Len() != fresh.Len() {
		t.Fatalf("Len = %d, want %d", inc.Len(), fresh.Len())
	}
	for _, k := range keys {
		q := set(k, 25)
		got := map[string]float64{}
		for _, c := range inc.Query(q) {
			got[c.Key] = c.Estimated
		}
		want := map[string]float64{}
		for _, c := range fresh.Query(q) {
			want[c.Key] = c.Estimated
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: candidates %v, want %v", k, got, want)
		}
		for key, est := range want {
			if got[key] != est {
				t.Errorf("query %s: candidate %s est %v, want %v", k, key, got[key], est)
			}
		}
	}
	// Re-adding a removed key behaves like a fresh insert.
	inc.Remove("b")
	inc.Add("b", set("b", 21))
	found := false
	for _, c := range inc.Query(set("b", 21)) {
		if c.Key == "b" && c.Estimated == 1 {
			found = true
		}
	}
	if !found {
		t.Error("re-added key not found with estimate 1")
	}
}
