// Package minhash implements MinHash signatures and an LSH banding index.
// The D3L baseline (paper §6.5.1) measures column unionability partly by
// value overlap; like the original D3L and the JOSIE / LSH-Ensemble line of
// work it builds on, the reproduction estimates Jaccard similarity between
// column value sets with MinHash and uses LSH banding to shortlist
// candidate columns without comparing against the whole lake.
package minhash

import (
	"fmt"
	"math"
)

// Signature is a MinHash sketch of a set.
type Signature []uint64

// Hasher produces MinHash signatures of a fixed length. The k hash
// functions are simulated with one strong 64-bit hash and k seed mixes.
type Hasher struct {
	k     int
	seeds []uint64
}

// NewHasher creates a Hasher with k hash functions (k >= 1).
func NewHasher(k int) *Hasher {
	if k < 1 {
		k = 1
	}
	h := &Hasher{k: k, seeds: make([]uint64, k)}
	state := uint64(0x5d15_ce55)
	for i := range h.seeds {
		state = state*6364136223846793005 + 1442695040888963407
		h.seeds[i] = state
	}
	return h
}

// K returns the signature length.
func (h *Hasher) K() int { return h.k }

// Sign computes the MinHash signature of the given set of string values.
// An empty set yields a signature of all MaxUint64.
func (h *Hasher) Sign(values []string) Signature {
	sig := make(Signature, h.k)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, v := range values {
		base := fnv64(v)
		for i, seed := range h.seeds {
			hv := mix(base ^ seed)
			if hv < sig[i] {
				sig[i] = hv
			}
		}
	}
	return sig
}

// Estimate returns the estimated Jaccard similarity of the sets behind two
// signatures (fraction of agreeing positions).
func Estimate(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// ExactJaccard computes the true Jaccard similarity of two string sets,
// used as ground truth in tests and in the small-lake D3L scorer.
func ExactJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	seen := make(map[string]bool, len(b))
	for _, v := range b {
		if seen[v] {
			continue
		}
		seen[v] = true
		if set[v] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Index is an LSH banding index over signatures: signatures agreeing on all
// rows of any band land in the same bucket and become candidates. Removal is
// supported via tombstones — removed ids stay in the bucket lists but are
// skipped by Query — with automatic compaction (a rebuild preserving the
// surviving insertion order) once dead entries outnumber live ones, so an
// evolving lake cannot grow the index without bound.
type Index struct {
	hasher  *Hasher
	bands   int
	rows    int
	buckets []map[string][]int // one bucket map per band
	keys    []string           // id -> external key
	sigs    []Signature
	byKey   map[string][]int // external key -> ids (for removal)
	removed []bool           // id -> tombstoned
	dead    int
	// manualCompact suppresses the automatic compaction inside Remove: a
	// maintenance layer that owns compaction (SetAutoCompact(false)) calls
	// Compact itself, off the mutation path.
	manualCompact bool
}

// NewIndex creates an LSH index with the given number of bands; the hasher
// signature length must be divisible by bands.
func NewIndex(h *Hasher, bands int) (*Index, error) {
	if bands < 1 || h.K()%bands != 0 {
		return nil, fmt.Errorf("minhash: %d bands does not divide signature length %d", bands, h.K())
	}
	idx := &Index{
		hasher:  h,
		bands:   bands,
		rows:    h.K() / bands,
		buckets: make([]map[string][]int, bands),
		byKey:   make(map[string][]int),
	}
	for i := range idx.buckets {
		idx.buckets[i] = make(map[string][]int)
	}
	return idx, nil
}

// Add signs the value set and indexes it under key. It returns the internal
// id assigned to the key.
func (idx *Index) Add(key string, values []string) int {
	return idx.AddSignature(key, idx.hasher.Sign(values))
}

// AddSignature indexes a precomputed signature under key, for callers that
// already signed the value set (e.g. parallel index builds that compute
// signatures up front and insert them sequentially). The signature must
// come from this index's hasher.
func (idx *Index) AddSignature(key string, sig Signature) int {
	id := len(idx.keys)
	idx.keys = append(idx.keys, key)
	idx.sigs = append(idx.sigs, sig)
	idx.removed = append(idx.removed, false)
	idx.byKey[key] = append(idx.byKey[key], id)
	for b := 0; b < idx.bands; b++ {
		idx.buckets[b][bandKey(sig, b, idx.rows)] = append(idx.buckets[b][bandKey(sig, b, idx.rows)], id)
	}
	return id
}

// Remove tombstones every signature indexed under key and returns how many
// were removed (0 if the key was never indexed). The index compacts itself
// once dead entries outnumber live ones; compaction preserves the surviving
// insertion order, so query results stay identical to an index rebuilt from
// scratch over the surviving sets.
func (idx *Index) Remove(key string) int {
	ids := idx.byKey[key]
	if len(ids) == 0 {
		return 0
	}
	delete(idx.byKey, key)
	for _, id := range ids {
		if !idx.removed[id] {
			idx.removed[id] = true
			idx.dead++
		}
	}
	if !idx.manualCompact && idx.dead > len(idx.keys)-idx.dead {
		idx.compact()
	}
	return len(ids)
}

// SetAutoCompact toggles the automatic compaction inside Remove. With auto
// compaction off, tombstones accumulate until Compact is called — the mode a
// background maintainer uses to keep mutations O(delta) and compact on its
// own schedule.
func (idx *Index) SetAutoCompact(on bool) { idx.manualCompact = !on }

// Compact rebuilds the index without tombstoned entries, preserving the
// survivors' insertion order (so queries are unaffected). It reports whether
// there was anything to compact.
func (idx *Index) Compact() bool {
	if idx.dead == 0 {
		return false
	}
	idx.compact()
	return true
}

// Dead returns the number of tombstoned entries awaiting compaction.
func (idx *Index) Dead() int { return idx.dead }

// DeadFraction returns the tombstoned share of all slots (live + dead),
// 0 for an empty index.
func (idx *Index) DeadFraction() float64 {
	if len(idx.keys) == 0 {
		return 0
	}
	return float64(idx.dead) / float64(len(idx.keys))
}

// compact rebuilds the bucket lists without tombstoned ids, renumbering the
// survivors in their original insertion order.
func (idx *Index) compact() {
	keys := make([]string, 0, len(idx.keys)-idx.dead)
	sigs := make([]Signature, 0, cap(keys))
	byKey := make(map[string][]int, len(idx.byKey))
	buckets := make([]map[string][]int, idx.bands)
	for b := range buckets {
		buckets[b] = make(map[string][]int)
	}
	for id, sig := range idx.sigs {
		if idx.removed[id] {
			continue
		}
		nid := len(keys)
		key := idx.keys[id]
		keys = append(keys, key)
		sigs = append(sigs, sig)
		byKey[key] = append(byKey[key], nid)
		for b := 0; b < idx.bands; b++ {
			buckets[b][bandKey(sig, b, idx.rows)] = append(buckets[b][bandKey(sig, b, idx.rows)], nid)
		}
	}
	idx.keys, idx.sigs, idx.byKey, idx.buckets = keys, sigs, byKey, buckets
	idx.removed = make([]bool, len(keys))
	idx.dead = 0
}

// Clone returns an independently mutable copy of the index: bucket lists,
// key tables, and tombstone state are deep-copied (with exact-length
// backing arrays, so appends on either side reallocate instead of writing
// into shared memory), while the immutable signatures and the hasher are
// shared. AddSignature/Remove/compaction on the clone never disturb the
// original, which may still be serving Query calls concurrently.
func (idx *Index) Clone() *Index {
	c := &Index{
		hasher:  idx.hasher,
		bands:   idx.bands,
		rows:    idx.rows,
		buckets: make([]map[string][]int, len(idx.buckets)),
		keys:    make([]string, len(idx.keys)),
		sigs:    make([]Signature, len(idx.sigs)),
		byKey:   make(map[string][]int, len(idx.byKey)),
		removed: make([]bool, len(idx.removed)),
		dead:    idx.dead,

		manualCompact: idx.manualCompact,
	}
	copy(c.keys, idx.keys)
	copy(c.sigs, idx.sigs)
	copy(c.removed, idx.removed)
	for b, m := range idx.buckets {
		nm := make(map[string][]int, len(m))
		for k, ids := range m {
			nm[k] = append(make([]int, 0, len(ids)), ids...)
		}
		c.buckets[b] = nm
	}
	for k, ids := range idx.byKey {
		c.byKey[k] = append(make([]int, 0, len(ids)), ids...)
	}
	return c
}

// Candidate is a query result: an indexed key with its estimated Jaccard.
type Candidate struct {
	Key       string
	Estimated float64
}

// Query signs the value set and returns all indexed keys sharing at least
// one LSH bucket, with estimated Jaccard similarities, unsorted. Callers
// that already hold a signature from this index's hasher use QuerySig and
// skip the signing pass.
func (idx *Index) Query(values []string) []Candidate {
	return idx.QuerySig(idx.hasher.Sign(values))
}

// QuerySig is Query for a pre-computed signature (which must come from
// this index's hasher).
func (idx *Index) QuerySig(sig Signature) []Candidate {
	seen := map[int]bool{}
	var out []Candidate
	for b := 0; b < idx.bands; b++ {
		for _, id := range idx.buckets[b][bandKey(sig, b, idx.rows)] {
			if seen[id] || idx.removed[id] {
				continue
			}
			seen[id] = true
			out = append(out, Candidate{Key: idx.keys[id], Estimated: Estimate(sig, idx.sigs[id])})
		}
	}
	return out
}

// Len returns the number of indexed sets (excluding removed ones).
func (idx *Index) Len() int { return len(idx.keys) - idx.dead }

// Bands returns the number of LSH bands the index was created with.
func (idx *Index) Bands() int { return idx.bands }

func bandKey(sig Signature, band, rows int) string {
	b := make([]byte, 0, rows*8)
	for _, v := range sig[band*rows : (band+1)*rows] {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}

// fnv64 hashes s with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix finalizes a 64-bit hash (splitmix64 finalizer).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
