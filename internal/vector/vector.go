// Package vector provides the dense-vector math substrate used throughout
// the DUST reproduction: dot products, norms, the distance functions the
// paper evaluates (cosine, euclidean, manhattan), mean vectors, and a small
// PCA implementation used to regenerate Figure 2.
//
// Vectors are plain []float64 slices. All functions treat a nil slice as a
// zero-length vector and panic on dimension mismatch, because a mismatch is
// always a programming error in this codebase, never a data error.
package vector

import (
	"fmt"
	"math"
)

// Vec is a dense vector. It is an alias-style named type so callers can hang
// methods off it while still passing ordinary slices everywhere.
type Vec = []float64

// Dot returns the inner product of a and b.
func Dot(a, b Vec) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v Vec) float64 {
	return math.Sqrt(Dot(v, v))
}

// dotAndNorms is the fused kernel behind Cosine: one pass over a and b
// computing a·b, a·a, and b·b, so the hot similarity path never walks
// the vectors three times through Dot and Norm.
func dotAndNorms(a, b Vec) (dot, na, nb float64) {
	checkLen(a, b)
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	return dot, na, nb
}

// Cosine returns the cosine similarity of a and b in [-1, 1].
// If either vector has zero norm the similarity is defined as 0.
func Cosine(a, b Vec) float64 {
	dot, na, nb := dotAndNorms(a, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineDistance returns 1 - Cosine(a, b), the distance used by the paper's
// tuple representation model and diversification experiments.
func CosineDistance(a, b Vec) float64 {
	return 1 - Cosine(a, b)
}

// SquaredEuclidean returns the squared L2 distance between a and b: the
// monotone companion of Euclidean that skips the sqrt, so per-hop distance
// comparisons (the HNSW candidate graph) pay one fused pass and nothing
// else. For unit vectors it is 2(1-cosine), so nearest-by-SquaredEuclidean
// is highest-by-cosine.
func SquaredEuclidean(a, b Vec) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Euclidean returns the L2 distance between a and b.
func Euclidean(a, b Vec) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// Manhattan returns the L1 distance between a and b.
func Manhattan(a, b Vec) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// DistanceFunc maps two equal-dimension vectors to a non-negative distance.
// The distance between a vector and itself must be 0 (paper §3.1).
type DistanceFunc func(a, b Vec) float64

// Distances registered by name, used by CLI flags and experiment configs.
var distances = map[string]DistanceFunc{
	"cosine":    CosineDistance,
	"euclidean": Euclidean,
	"manhattan": Manhattan,
}

// Distance returns the registered distance function with the given name.
func Distance(name string) (DistanceFunc, error) {
	fn, ok := distances[name]
	if !ok {
		return nil, fmt.Errorf("vector: unknown distance %q (want cosine, euclidean, or manhattan)", name)
	}
	return fn, nil
}

// DistanceNames returns the names accepted by Distance, sorted.
func DistanceNames() []string {
	return []string{"cosine", "euclidean", "manhattan"}
}

// Add returns a new vector a+b.
func Add(a, b Vec) Vec {
	checkLen(a, b)
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a-b.
func Sub(a, b Vec) Vec {
	checkLen(a, b)
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns a new vector v*s.
func Scale(v Vec, s float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b Vec) {
	checkLen(a, b)
	for i := range a {
		a[i] += b[i]
	}
}

// Normalize returns v scaled to unit L2 norm; a zero vector is returned
// unchanged (as a copy).
func Normalize(v Vec) Vec {
	n := Norm(v)
	out := make(Vec, len(v))
	if n == 0 {
		copy(out, v)
		return out
	}
	for i := range v {
		out[i] = v[i] / n
	}
	return out
}

// Mean returns the component-wise mean of vs. It panics if vs is empty,
// because the mean of nothing has no dimension.
func Mean(vs []Vec) Vec {
	if len(vs) == 0 {
		panic("vector: Mean of empty set")
	}
	out := make(Vec, len(vs[0]))
	for _, v := range vs {
		AddInPlace(out, v)
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Clone returns a copy of v.
func Clone(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

func checkLen(a, b Vec) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(b)))
	}
}
