package vector

import (
	"fmt"
)

// Vec32 is a dense float32 vector — the storage type of the approximate
// candidate index (internal/ann), which trades float64 precision for half
// the memory traffic on the graph traversal hot path. The same conventions
// apply as for Vec: nil is a zero-length vector, dimension mismatches
// panic.
type Vec32 = []float32

// SquaredEuclidean32 returns the squared L2 distance between a and b — the
// per-hop kernel of the HNSW candidate graph: one fused pass, no sqrt. For
// unit vectors it is 2(1-cosine), so nearest under it is highest-cosine.
func SquaredEuclidean32(a, b Vec32) float32 {
	checkLen32(a, b)
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ToVec32 converts a float64 vector to float32 storage (a copy; the input
// is not retained). Values are truncated to float32 precision — callers
// index normalized embeddings, where the ~1e-7 relative error is far below
// any score margin the exact re-rank stage cares about.
func ToVec32(v Vec) Vec32 {
	out := make(Vec32, len(v))
	for i := range v {
		out[i] = float32(v[i])
	}
	return out
}

func checkLen32(a, b Vec32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(b)))
	}
}
