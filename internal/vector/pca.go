package vector

import (
	"fmt"
	"math"
	"sort"
)

// PCA projects a set of vectors onto their top principal components. It is
// used to regenerate Figure 2 of the paper (2-d scatter of 768-d table and
// tuple embeddings). The implementation centers the data, forms the
// covariance matrix, and diagonalises it with the cyclic Jacobi method,
// which is robust and dependency-free at the dimensionalities we use.
type PCA struct {
	components [][]float64 // row i = i-th principal axis, unit norm
	mean       Vec
	variance   []float64 // eigenvalue for each retained component
}

// FitPCA computes the top-k principal components of data. Every row of data
// must have the same dimension. k is clamped to the data dimension.
func FitPCA(data []Vec, k int) (*PCA, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("vector: FitPCA needs at least one sample")
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, fmt.Errorf("vector: FitPCA needs non-empty vectors")
	}
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("vector: FitPCA sample %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	if k <= 0 || k > dim {
		k = dim
	}

	mean := Mean(data)
	// Covariance matrix (dim x dim).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, v := range data {
		for i := 0; i < dim; i++ {
			di := v[i] - mean[i]
			row := cov[i]
			for j := i; j < dim; j++ {
				row[j] += di * (v[j] - mean[j])
			}
		}
	}
	inv := 1 / float64(len(data))
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}

	vals, vecs := jacobiEigen(cov)
	// Order eigenpairs by decreasing eigenvalue.
	idx := make([]int, dim)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	p := &PCA{mean: mean}
	for c := 0; c < k; c++ {
		col := idx[c]
		axis := make([]float64, dim)
		for r := 0; r < dim; r++ {
			axis[r] = vecs[r][col]
		}
		p.components = append(p.components, axis)
		p.variance = append(p.variance, math.Max(vals[col], 0))
	}
	return p, nil
}

// Transform projects v onto the fitted components.
func (p *PCA) Transform(v Vec) Vec {
	centered := Sub(v, p.mean)
	out := make(Vec, len(p.components))
	for i, axis := range p.components {
		out[i] = Dot(axis, centered)
	}
	return out
}

// TransformAll projects every vector in data.
func (p *PCA) TransformAll(data []Vec) []Vec {
	out := make([]Vec, len(data))
	for i, v := range data {
		out[i] = p.Transform(v)
	}
	return out
}

// ExplainedVariance returns the eigenvalue associated with each retained
// component, in decreasing order.
func (p *PCA) ExplainedVariance() []float64 {
	out := make([]float64, len(p.variance))
	copy(out, p.variance)
	return out
}

// Components returns the number of retained principal components.
func (p *PCA) Components() int { return len(p.components) }

// jacobiEigen diagonalises the symmetric matrix a (destructively) using the
// cyclic Jacobi method. It returns the eigenvalues and the matrix of
// eigenvectors stored column-wise (vecs[r][c] = r-th component of the c-th
// eigenvector).
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	const (
		maxSweeps = 100
		eps       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < eps/float64(n*n) {
					continue
				}
				// Compute the Jacobi rotation that zeroes a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				app, aqq, apq := a[p][p], a[q][q], a[p][q]
				a[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
				a[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = c*aip - s*aiq
					a[p][i] = a[i][p]
					a[i][q] = s*aip + c*aiq
					a[q][i] = a[i][q]
				}
				for i := 0; i < n; i++ {
					vip, viq := vecs[i][p], vecs[i][q]
					vecs[i][p] = c*vip - s*viq
					vecs[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, vecs
}
