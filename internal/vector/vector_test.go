package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	cases := []struct {
		a, b Vec
		want float64
	}{
		{Vec{1, 2, 3}, Vec{4, 5, 6}, 32},
		{Vec{0, 0}, Vec{1, 1}, 0},
		{Vec{-1, 2}, Vec{3, 4}, 5},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched dimensions did not panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm(Vec{3, 4}); got != 5 {
		t.Errorf("Norm{3,4} = %v, want 5", got)
	}
	if got := Norm(Vec{0, 0, 0}); got != 0 {
		t.Errorf("Norm zero = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vec{1, 0}, Vec{1, 0}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Cosine identical = %v, want 1", got)
	}
	if got := Cosine(Vec{1, 0}, Vec{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Cosine orthogonal = %v, want 0", got)
	}
	if got := Cosine(Vec{1, 0}, Vec{-1, 0}); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Cosine opposite = %v, want -1", got)
	}
	if got := Cosine(Vec{0, 0}, Vec{1, 2}); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestCosineDistanceSelfIsZero(t *testing.T) {
	v := Vec{0.3, -1.5, 2.2}
	if got := CosineDistance(v, v); !almostEqual(got, 0, 1e-12) {
		t.Errorf("CosineDistance(v, v) = %v, want 0", got)
	}
}

func TestEuclideanAndManhattan(t *testing.T) {
	a, b := Vec{1, 2}, Vec{4, 6}
	if got := Euclidean(a, b); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := Manhattan(a, b); got != 7 {
		t.Errorf("Manhattan = %v, want 7", got)
	}
}

func TestDistanceRegistry(t *testing.T) {
	for _, name := range DistanceNames() {
		fn, err := Distance(name)
		if err != nil {
			t.Fatalf("Distance(%q) error: %v", name, err)
		}
		if d := fn(Vec{1, 2}, Vec{1, 2}); !almostEqual(d, 0, 1e-12) {
			t.Errorf("%s distance of identical vectors = %v, want 0", name, d)
		}
	}
	if _, err := Distance("chebyshev"); err == nil {
		t.Error("Distance with unknown name should error")
	}
}

func TestAddSubScale(t *testing.T) {
	a, b := Vec{1, 2}, Vec{3, -4}
	if got := Add(a, b); got[0] != 4 || got[1] != -2 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); got[0] != -2 || got[1] != 6 {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2); got[0] != 2 || got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
	// Inputs must not be mutated.
	if a[0] != 1 || b[0] != 3 {
		t.Error("Add/Sub/Scale mutated their inputs")
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize(Vec{3, 4})
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Errorf("Normalize norm = %v, want 1", Norm(v))
	}
	z := Normalize(Vec{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize zero = %v, want zero vector", z)
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vec{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v, want [2 3]", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of empty set did not panic")
		}
	}()
	Mean(nil)
}

func TestClone(t *testing.T) {
	v := Vec{1, 2}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares backing array with original")
	}
}

// tame maps arbitrary quick-generated floats into a finite, moderate range
// so properties are not defeated by overflow to +/-Inf.
func tame(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Remainder(x, 1000)
	}
	return out
}

// Property: cosine similarity is symmetric and bounded in [-1, 1].
func TestCosineProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		av, bv := tame(a[:]), tame(b[:])
		c1, c2 := Cosine(av, bv), Cosine(bv, av)
		if !almostEqual(c1, c2, 1e-9) {
			return false
		}
		return c1 >= -1-1e-9 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: euclidean distance obeys the triangle inequality.
func TestEuclideanTriangleInequality(t *testing.T) {
	f := func(a, b, c [6]float64) bool {
		av, bv, cv := tame(a[:]), tame(b[:]), tame(c[:])
		ab := Euclidean(av, bv)
		bc := Euclidean(bv, cv)
		ac := Euclidean(av, cv)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: manhattan >= euclidean >= 0 for any pair.
func TestDistanceOrderingProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		av, bv := tame(a[:]), tame(b[:])
		e := Euclidean(av, bv)
		m := Manhattan(av, bv)
		return m >= e-1e-9 && e >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
