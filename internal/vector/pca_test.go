package vector

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 2); err == nil {
		t.Error("FitPCA(nil) should error")
	}
	if _, err := FitPCA([]Vec{{}}, 2); err == nil {
		t.Error("FitPCA with empty vectors should error")
	}
	if _, err := FitPCA([]Vec{{1, 2}, {1}}, 2); err == nil {
		t.Error("FitPCA with ragged rows should error")
	}
}

func TestPCARecoversDominantAxis(t *testing.T) {
	// Points spread along the diagonal (1,1)/sqrt(2) with small noise on the
	// orthogonal axis: the first principal component must align with the
	// diagonal.
	rng := rand.New(rand.NewSource(1))
	var data []Vec
	for i := 0; i < 200; i++ {
		tpos := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.1
		data = append(data, Vec{tpos + noise, tpos - noise})
	}
	p, err := FitPCA(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	axis := p.components[0]
	// Alignment with (1,1)/sqrt(2), up to sign.
	align := math.Abs((axis[0] + axis[1]) / math.Sqrt2)
	if align < 0.99 {
		t.Errorf("first PC alignment with diagonal = %v, want > 0.99 (axis %v)", align, axis)
	}
	ev := p.ExplainedVariance()
	if ev[0] <= ev[1] {
		t.Errorf("eigenvalues not sorted: %v", ev)
	}
	if ev[0] < 50 {
		t.Errorf("dominant eigenvalue %v suspiciously small", ev[0])
	}
}

func TestPCATransformDimension(t *testing.T) {
	data := []Vec{{1, 2, 3, 4}, {2, 3, 4, 5}, {0, 1, 0, 1}, {5, 4, 3, 2}}
	p, err := FitPCA(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 2 {
		t.Fatalf("Components = %d, want 2", p.Components())
	}
	out := p.TransformAll(data)
	if len(out) != len(data) {
		t.Fatalf("TransformAll length = %d, want %d", len(out), len(data))
	}
	for _, v := range out {
		if len(v) != 2 {
			t.Fatalf("projected dimension = %d, want 2", len(v))
		}
	}
}

func TestPCAPreservesPairwiseVarianceTotal(t *testing.T) {
	// With k = dim, total explained variance equals total data variance.
	rng := rand.New(rand.NewSource(7))
	var data []Vec
	for i := 0; i < 100; i++ {
		data = append(data, Vec{rng.NormFloat64(), rng.NormFloat64() * 2, rng.NormFloat64() * 3})
	}
	p, err := FitPCA(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	var evSum float64
	for _, e := range p.ExplainedVariance() {
		evSum += e
	}
	mean := Mean(data)
	var varSum float64
	for _, v := range data {
		d := Sub(v, mean)
		varSum += Dot(d, d)
	}
	varSum /= float64(len(data))
	if math.Abs(evSum-varSum) > 1e-6*math.Max(1, varSum) {
		t.Errorf("explained variance %v != total variance %v", evSum, varSum)
	}
}

func TestPCAKClamped(t *testing.T) {
	data := []Vec{{1, 2}, {3, 4}, {5, 6}}
	p, err := FitPCA(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 2 {
		t.Errorf("Components = %d, want clamped to 2", p.Components())
	}
}

func TestJacobiEigenIdentity(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 3}}
	vals, _ := jacobiEigen(a)
	got := map[float64]bool{vals[0]: true, vals[1]: true}
	if !got[2] || !got[3] {
		t.Errorf("eigenvalues of diag(2,3) = %v", vals)
	}
}
