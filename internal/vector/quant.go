package vector

import (
	"fmt"
	"math"
)

// QVec32 is an SQ8 scalar-quantized vector: one int8 code per dimension
// plus a per-vector affine dequantization map. A stored value decodes as
//
//	v[i] ≈ Offset + Scale*float32(Codes[i])
//
// Scale spreads the vector's own [min, max] range across the 256 code
// points (Scale = (max-min)/255, with min landing exactly on code -128),
// so quantization error is bounded by Scale/2 per dimension regardless of
// the embedding's global dynamic range. At dimension d the resident cost
// is d+8 bytes against 4d for Vec32 — the 4x memory cut that makes
// 100k-table candidate graphs resident.
type QVec32 struct {
	// Codes holds one signed 8-bit code per dimension.
	Codes []int8
	// Scale is the per-vector dequantization step (>= 0).
	Scale float32
	// Offset is the reconstructed value of code 0.
	Offset float32
}

// Quantize compresses v to SQ8 codes. The mapping is deterministic: equal
// inputs always produce identical codes and parameters. A constant vector
// (max == min) quantizes to Scale 0 with every code 0, reconstructing the
// constant exactly.
func Quantize(v Vec32) QVec32 {
	q := QVec32{Codes: make([]int8, len(v))}
	if len(v) == 0 {
		return q
	}
	mn, mx := v[0], v[0]
	for _, x := range v[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	q.Scale = (mx - mn) / 255
	q.Offset = mn + 128*q.Scale
	if q.Scale != 0 {
		inv := 1 / float64(q.Scale)
		off := float64(q.Offset)
		for i, x := range v {
			t := math.Round((float64(x) - off) * inv)
			if t < -128 {
				t = -128
			} else if t > 127 {
				t = 127
			}
			q.Codes[i] = int8(t)
		}
	}
	return q
}

// Dequantize reconstructs the float32 vector a QVec32 approximates (a
// fresh copy; the reconstruction is lossy by up to Scale/2 per dimension).
func Dequantize(q QVec32) Vec32 {
	out := make(Vec32, len(q.Codes))
	for i, c := range q.Codes {
		out[i] = q.Offset + q.Scale*float32(c)
	}
	return out
}

// SquaredEuclideanQ returns the squared L2 distance between a float32
// query and a quantized vector in one fused pass — codes are decoded in
// registers, never materialized as a float vector.
func SquaredEuclideanQ(a Vec32, x QVec32) float32 {
	if len(a) != len(x.Codes) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(x.Codes)))
	}
	s, o := x.Scale, x.Offset
	var sum float32
	for i, c := range x.Codes {
		e := a[i] - (o + s*float32(c))
		sum += e * e
	}
	return sum
}

// DotQ returns the dot product of a float32 query and a quantized vector
// in one fused pass over the codes.
func DotQ(a Vec32, x QVec32) float32 {
	if len(a) != len(x.Codes) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(x.Codes)))
	}
	var dot, qs float32
	for i, c := range x.Codes {
		dot += a[i] * float32(c)
		qs += a[i]
	}
	return x.Offset*qs + x.Scale*dot
}

// CodeSums returns (Σc, Σc²) over a code vector. The ANN graph caches
// both per node so code-to-code and query-to-code distances reduce to a
// single dot product plus O(1) algebra (see DotCodes).
func CodeSums(c []int8) (s1, s2 int32) {
	for _, x := range c {
		v := int32(x)
		s1 += v
		s2 += v * v
	}
	return s1, s2
}

// DotCodes returns Σ a[i]*b[i] over two code vectors with integer
// accumulation — the int8 kernel at the heart of quantized graph
// traversal. With per-vector (Scale, Offset, Σc, Σc²) in hand, the
// squared distance between stored vectors x and y expands to
//
//	d·Δo² + 2Δo·(sx·S1x − sy·S1y) + sx²·S2x + sy²·S2y − 2·sx·sy·DotCodes
//
// so the only per-dimension work is this integer dot. The accumulator
// cannot overflow: 2^16 dimensions of |a·b| ≤ 2^14 stays under 2^30.
func DotCodes(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var dot int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		dot += int32(a[i])*int32(b[i]) +
			int32(a[i+1])*int32(b[i+1]) +
			int32(a[i+2])*int32(b[i+2]) +
			int32(a[i+3])*int32(b[i+3])
	}
	for ; i < len(a); i++ {
		dot += int32(a[i]) * int32(b[i])
	}
	return dot
}

// DotF32Codes returns Σ q[i]*float32(c[i]) — the asymmetric kernel for
// float32-query-to-quantized-node distances. Combined with the query's
// own Σq and Σq² (computed once per search) and the node's cached sums,
// the exact query-to-reconstruction distance is again one pass plus O(1)
// algebra.
func DotF32Codes(q Vec32, c []int8) float32 {
	if len(q) != len(c) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(q), len(c)))
	}
	var dot float32
	i := 0
	for ; i+4 <= len(q); i += 4 {
		dot += q[i]*float32(c[i]) +
			q[i+1]*float32(c[i+1]) +
			q[i+2]*float32(c[i+2]) +
			q[i+3]*float32(c[i+3])
	}
	for ; i < len(q); i++ {
		dot += q[i] * float32(c[i])
	}
	return dot
}
