package vector

import (
	"math"
	"testing"
)

func TestFloat32Kernels(t *testing.T) {
	a := Vec32{1, 2, 3, 4}
	b := Vec32{4, 3, 2, 1}
	if got := SquaredEuclidean32(a, b); got != 9+1+1+9 {
		t.Errorf("SquaredEuclidean32 = %v, want 20", got)
	}
	if got := SquaredEuclidean32(a, a); got != 0 {
		t.Errorf("SquaredEuclidean32(a,a) = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	SquaredEuclidean32(a, Vec32{1})
}

func TestVec32Conversions(t *testing.T) {
	v := Vec{0.25, -1.5, 3}
	v32 := ToVec32(v)
	for i := range v {
		if float64(v32[i]) != v[i] {
			t.Errorf("exactly-representable %v converted to %v at %d", v[i], v32[i], i)
		}
	}
	v32[0] = 99
	if v[0] != 0.25 {
		t.Error("ToVec32 aliases its input")
	}
	if len(ToVec32(nil)) != 0 {
		t.Error("nil conversion not empty")
	}
}

func TestSquaredEuclideanMatchesEuclidean(t *testing.T) {
	a := Vec{0.3, -0.4, 0.86}
	b := Vec{-0.1, 0.2, 0.5}
	if got, want := Euclidean(a, b), math.Sqrt(SquaredEuclidean(a, b)); got != want {
		t.Errorf("Euclidean = %v, sqrt(SquaredEuclidean) = %v", got, want)
	}
	// For unit vectors, squared L2 must equal 2(1-cosine): the monotone
	// equivalence the HNSW candidate stage relies on.
	na, nb := Normalize(a), Normalize(b)
	if got, want := SquaredEuclidean(na, nb), 2*(1-Cosine(na, nb)); math.Abs(got-want) > 1e-12 {
		t.Errorf("unit-vector identity: %v vs %v", got, want)
	}
}

func TestCosineFusedKernel(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{-1, 0, 2}
	dot, na, nb := dotAndNorms(a, b)
	if dot != Dot(a, b) || na != Dot(a, a) || nb != Dot(b, b) {
		t.Errorf("dotAndNorms = (%v,%v,%v), want (%v,%v,%v)",
			dot, na, nb, Dot(a, b), Dot(a, a), Dot(b, b))
	}
}
