package vector

import (
	"math"
	"math/rand"
	"testing"
)

func randVec32(rng *rand.Rand, dim int) Vec32 {
	v := make(Vec32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := randVec32(rng, 64)
		q := Quantize(v)
		got := Dequantize(q)
		// Reconstruction error is bounded by Scale/2 per dimension (plus
		// float rounding slack).
		tol := float64(q.Scale)*0.5 + 1e-6
		for i := range v {
			if err := math.Abs(float64(v[i] - got[i])); err > tol {
				t.Fatalf("trial %d dim %d: |%v - %v| = %v > %v", trial, i, v[i], got[i], err, tol)
			}
		}
	}
}

func TestQuantizeEndpointsExact(t *testing.T) {
	v := Vec32{-3.5, 0.25, 7.125, 1}
	q := Quantize(v)
	got := Dequantize(q)
	// min maps to code -128, which reconstructs the minimum exactly.
	if got[0] != v[0] {
		t.Errorf("min: got %v, want %v", got[0], v[0])
	}
}

func TestQuantizeConstantAndEmpty(t *testing.T) {
	q := Quantize(Vec32{2.5, 2.5, 2.5})
	if q.Scale != 0 {
		t.Errorf("constant vector scale = %v", q.Scale)
	}
	for i, v := range Dequantize(q) {
		if v != 2.5 {
			t.Errorf("dim %d: got %v", i, v)
		}
	}
	if q := Quantize(nil); len(q.Codes) != 0 || q.Scale != 0 || q.Offset != 0 {
		t.Errorf("empty vector: %+v", q)
	}
}

func TestQuantizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := randVec32(rng, 128)
	a, b := Quantize(v), Quantize(append(Vec32(nil), v...))
	if a.Scale != b.Scale || a.Offset != b.Offset {
		t.Fatalf("params differ: %v/%v vs %v/%v", a.Scale, a.Offset, b.Scale, b.Offset)
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
}

func TestSquaredEuclideanQMatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := randVec32(rng, 48)
		x := Quantize(randVec32(rng, 48))
		want := SquaredEuclidean32(a, Dequantize(x))
		got := SquaredEuclideanQ(a, x)
		if math.Abs(float64(got-want)) > 1e-3*(1+math.Abs(float64(want))) {
			t.Errorf("trial %d: fused %v vs dequantized %v", trial, got, want)
		}
	}
}

func TestDotQMatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		a := randVec32(rng, 48)
		x := Quantize(randVec32(rng, 48))
		var want float32
		for i, v := range Dequantize(x) {
			want += a[i] * v
		}
		got := DotQ(a, x)
		if math.Abs(float64(got-want)) > 1e-3*(1+math.Abs(float64(want))) {
			t.Errorf("trial %d: fused %v vs dequantized %v", trial, got, want)
		}
	}
}

func TestCodeSumsAndDots(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Lengths around the unroll boundary exercise both loop tails.
	for _, dim := range []int{0, 1, 3, 4, 5, 7, 8, 63, 64, 65} {
		a := make([]int8, dim)
		b := make([]int8, dim)
		q := make(Vec32, dim)
		for i := 0; i < dim; i++ {
			a[i] = int8(rng.Intn(256) - 128)
			b[i] = int8(rng.Intn(256) - 128)
			q[i] = float32(rng.NormFloat64())
		}
		var s1, s2, dot int32
		var fdot float32
		for i := 0; i < dim; i++ {
			s1 += int32(a[i])
			s2 += int32(a[i]) * int32(a[i])
			dot += int32(a[i]) * int32(b[i])
			fdot += q[i] * float32(a[i])
		}
		if g1, g2 := CodeSums(a); g1 != s1 || g2 != s2 {
			t.Errorf("dim %d: CodeSums = (%d,%d), want (%d,%d)", dim, g1, g2, s1, s2)
		}
		if got := DotCodes(a, b); got != dot {
			t.Errorf("dim %d: DotCodes = %d, want %d", dim, got, dot)
		}
		if got := DotF32Codes(q, a); math.Abs(float64(got-fdot)) > 1e-3 {
			t.Errorf("dim %d: DotF32Codes = %v, want %v", dim, got, fdot)
		}
	}
}

func TestQuantKernelDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	SquaredEuclideanQ(Vec32{1, 2}, Quantize(Vec32{1, 2, 3}))
}
