// Finetune: trains a small DUST tuple-embedding model on a generated
// TUS-style pair dataset and compares its unionability classification
// accuracy against the pre-trained baselines (the paper's Fig. 6 in
// miniature).
package main

import (
	"fmt"

	"dust/internal/datagen"
	"dust/internal/embed"
	"dust/internal/model"
)

func main() {
	fmt.Println("generating fine-tuning pairs from a TUS-style benchmark...")
	bench := datagen.Generate("finetune-demo", datagen.Config{
		Seed: 7, Domains: 8, TablesPerBase: 8, BaseRows: 60, MinRows: 10, MaxRows: 20,
	})
	ds := datagen.Pairs(bench, 1200, 8)
	fmt.Printf("pairs: %d train / %d val / %d test\n\n", len(ds.Train), len(ds.Val), len(ds.Test))

	cfg := model.DefaultConfig()
	cfg.Epochs = 25
	fmt.Println("fine-tuning DUST (RoBERTa base)...")
	m := model.Train("dust-roberta", model.NewRoBERTaFeaturizer(), ds.Train, ds.Val, cfg)

	fmt.Printf("\n%-14s %s\n", "model", "accuracy @ 0.7 cosine distance")
	for _, enc := range []model.TupleEncoder{
		embed.NewBERT(), embed.NewRoBERTa(), embed.NewSBERT(), m,
	} {
		fmt.Printf("%-14s %.3f\n", enc.Name(), model.Accuracy(enc, ds.Test, model.ClassifyThreshold))
	}
	fmt.Println("\npre-trained models sit near the coin toss; fine-tuning is what")
	fmt.Println("teaches the embedding space tuple unionability (paper §4, Fig. 6).")
}
