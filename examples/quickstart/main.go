// Quickstart: build a tiny in-memory data lake, run the DUST pipeline, and
// print the diverse unionable tuples it returns for a query table.
package main

import (
	"fmt"
	"log"
	"strings"

	"dust"
	"dust/internal/lake"
	"dust/internal/table"
)

func main() {
	// A query table the user already has: parks they know about.
	query := table.New("my_parks", "Park Name", "Supervisor", "City", "Country")
	query.MustAppendRow("River Park", "Vera Onate", "Fresno", "USA")
	query.MustAppendRow("West Lawn Park", "Paul Veliotis", "Chicago", "USA")
	query.MustAppendRow("Hyde Park", "Jenny Rishi", "London", "UK")

	// A small data lake: one table is nearly a copy of the query (the
	// redundancy problem), one has new parks under different column names,
	// and one is about paintings (not unionable at all).
	l := lake.New("demo-lake")

	copycat := table.New("parks_mirror", "Park Name", "Supervisor", "Country")
	copycat.MustAppendRow("River Park", "Vera Onate", "USA")
	copycat.MustAppendRow("West Lawn Park", "Paul Veliotis", "USA")
	copycat.MustAppendRow("Hyde Park", "Jenny Rishi", "UK")
	l.MustAdd(copycat)

	fresh := table.New("city_parks", "Name of Park", "Supervised by", "Park City", "Park Country")
	fresh.MustAppendRow("Chippewa Park", "Tim Erickson", "Brandon, MN", "USA")
	fresh.MustAppendRow("Lawler Park", "Enrique Garcia", "Chicago, IL", "USA")
	fresh.MustAppendRow("Cedar Grove", "Maria Silva", "Waterloo, ON", "Canada")
	fresh.MustAppendRow("Sunset Commons", "Raj Iyer", "Austin, TX", "USA")
	l.MustAdd(fresh)

	paintings := table.New("paintings", "Painting", "Medium", "Date", "Country")
	paintings.MustAppendRow("Northern Lake", "Oil on canvas", "2006", "Canada")
	paintings.MustAppendRow("Memory Landscape 2", "Mixed media", "2018", "USA")
	l.MustAdd(paintings)

	// Run the pipeline: search -> align -> union -> embed -> diversify.
	pipeline := dust.New(l, dust.WithTopTables(2))
	res, err := pipeline.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("unionable tables found:", strings.Join(res.UnionableTables, ", "))
	fmt.Printf("unionable tuple pool: %d rows\n\n", res.Unioned.NumRows())
	fmt.Println("3 diverse unionable tuples:")
	fmt.Println("  " + strings.Join(res.Tuples.Headers(), " | "))
	for i := 0; i < res.Tuples.NumRows(); i++ {
		fmt.Printf("  %s   (from %s)\n",
			strings.Join(res.Tuples.Row(i), " | "), res.Provenance[i].Table)
	}
}
