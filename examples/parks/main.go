// Parks: the paper's Figure 1 walkthrough. A similarity-based union search
// returns the tuples of the near-copy table (most unionable, Table (e));
// DUST returns novel parks from the renamed table (most diverse, Table
// (f)). This example runs both selections over the same unionable tuple
// pool and prints them side by side.
package main

import (
	"fmt"
	"log"
	"strings"

	"dust"
	"dust/internal/diversify"
	"dust/internal/lake"
	"dust/internal/table"
)

func buildLake() (*table.Table, *lake.Lake) {
	query := table.New("query", "Park Name", "Supervisor", "City", "Country")
	query.MustAppendRow("River Park", "Vera Onate", "Fresno", "USA")
	query.MustAppendRow("West Lawn Park", "Paul Veliotis", "Chicago", "USA")
	query.MustAppendRow("Hyde Park", "Jenny Rishi", "London", "UK")

	l := lake.New("fig1")

	// Table (b): mostly a copy of the query with one new tuple.
	b := table.New("table_b", "Park Name", "Supervisor", "Country")
	b.MustAppendRow("River Park", "Vera Onate", "USA")
	b.MustAppendRow("West Lawn Park", "Paul Veliotis", "USA")
	b.MustAppendRow("Hyde Park", "Jenny Rishi", "UK")
	l.MustAdd(b)

	// Table (c): paintings — shares only Country, not unionable.
	c := table.New("table_c", "Painting", "Medium", "Dimensions", "Date", "Country")
	c.MustAppendRow("Northern Lake", "Oil on canvas", "91.4 x 121.9 cm", "2006", "Canada")
	c.MustAppendRow("Memory Landscape 2", "Mixed media", "33 x 324 cm", "2018", "USA")
	l.MustAdd(c)

	// Table (d): unionable with renamed columns and new parks.
	d := table.New("table_d", "Park Name", "Park City", "Park Country", "Park Phone", "Supervised by")
	d.MustAppendRow("Chippewa Park", "Brandon, MN", "USA", "773 731-0380", "Tim Erickson")
	d.MustAppendRow("Lawler Park", "Chicago, IL", "USA", "773 284-7328", "Enrique Garcia")
	l.MustAdd(d)
	return query, l
}

func printRows(t *table.Table) {
	for i := 0; i < t.NumRows(); i++ {
		fmt.Println("   ", strings.Join(t.Row(i), " | "))
	}
}

func main() {
	query, l := buildLake()

	// Existing work (most unionable): rank the pooled tuples by similarity
	// to the query — the redundant copies win.
	pipe := dust.New(l, dust.WithTopTables(2), dust.WithDiversifier(diversify.TopTuples{}))
	similar, err := pipe.Search(query, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Existing work (most unionable) — Table (e):")
	printRows(similar.Tuples)

	// Our work (most diverse): DUST avoids tuples the query already has.
	diverse, err := dust.New(l, dust.WithTopTables(2)).Search(query, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDUST (most diverse) — Table (f):")
	printRows(diverse.Tuples)

	fmt.Println("\nnon-unionable table_c was ranked below the unionable tables:",
		strings.Join(diverse.UnionableTables, ", "))
}
