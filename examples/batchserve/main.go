// Command batchserve demonstrates serving several queries at once with
// Pipeline.SearchBatch over the bounded worker pool.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dust"
	"dust/internal/lake"
	"dust/internal/table"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: batchserve <lake-dir> <query-dir>")
		os.Exit(2)
	}
	lakeDir := os.Args[1]
	queryDir := os.Args[2]
	l, err := lake.Load(lakeDir)
	if err != nil {
		panic(err)
	}
	files, _ := filepath.Glob(filepath.Join(queryDir, "*.csv"))
	sort.Strings(files)
	var queries []*table.Table
	for _, f := range files {
		q, err := table.LoadCSV(f)
		if err != nil {
			panic(err)
		}
		queries = append(queries, q)
	}
	p := dust.New(l, dust.WithWorkers(4))
	results, err := p.SearchBatch(queries, 5)
	if err != nil {
		fmt.Println("batch error:", err)
	}
	for i, r := range results {
		if r == nil {
			fmt.Printf("%-16s <failed>\n", queries[i].Name)
			continue
		}
		fmt.Printf("%-16s pool=%-4d returned=%d first=%q\n",
			queries[i].Name, r.Unioned.NumRows(), r.Tuples.NumRows(), r.Tuples.Row(0))
	}
}
