// Serve: a self-contained walkthrough of the dustserve HTTP subsystem. It
// builds a synthetic lake, starts an in-process server, and then plays a
// client session against it: an uncached search, a cached repeat of the
// same search (same epoch, same fingerprint), a live PUT of a new table
// (snapshot swap, epoch bump), and a post-mutation repeat showing the
// epoch-keyed cache miss. It finishes with the server's /stats counters.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/serve"
	"dust/internal/table"
)

func main() {
	b := datagen.Generate("serve-demo", datagen.Config{
		Seed: 7, Domains: 4, TablesPerBase: 5, BaseRows: 60, MinRows: 15, MaxRows: 30,
	})
	query := b.Queries[0]

	// Hold one table out of the lake so the walkthrough can add it live.
	names := b.Lake.Names()
	held := b.Lake.Get(names[len(names)-1])
	if err := b.Lake.Remove(held.Name); err != nil {
		log.Fatal(err)
	}

	p := dust.New(b.Lake, dust.WithTopTables(5))
	srv := serve.New(p, serve.WithMaxInFlight(4), serve.WithTimeout(10*time.Second))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	search := func(label string) {
		body, _ := json.Marshal(map[string]any{
			"query": map[string]any{"headers": query.Headers(), "rows": rows(query)},
			"k":     5,
		})
		start := time.Now()
		resp, err := http.Post(base+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var out struct {
			Epoch  uint64   `json:"epoch"`
			Cached bool     `json:"cached"`
			Tables []string `json:"tables"`
			Pool   int      `json:"pool"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%-22s status=%d epoch=%d cached=%-5v pool=%-4d in %v\n",
			label, resp.StatusCode, out.Epoch, out.Cached, out.Pool, time.Since(start).Round(time.Microsecond))
	}

	search("search (cold)")
	search("search (cache hit)")

	// Live mutation: PUT the held-out table. The snapshot swap bumps the
	// epoch without blocking any in-flight search.
	tb, _ := json.Marshal(map[string]any{"headers": held.Headers(), "rows": rows(held)})
	req, _ := http.NewRequest(http.MethodPut, base+"/tables/"+held.Name, bytes.NewReader(tb))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var mut struct {
		Epoch  uint64 `json:"epoch"`
		Tables int    `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mut); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("%-22s status=%d epoch=%d tables=%d\n", "put "+held.Name, resp.StatusCode, mut.Epoch, mut.Tables)

	search("search (new epoch)")
	search("search (cache hit)")

	stats, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st struct {
		Epoch     uint64 `json:"epoch"`
		Tables    int    `json:"tables"`
		Searches  uint64 `json:"searches"`
		Mutations uint64 `json:"mutations"`
		Cache     struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	stats.Body.Close()
	fmt.Printf("stats: epoch=%d tables=%d searches=%d mutations=%d cache hits=%d misses=%d entries=%d\n",
		st.Epoch, st.Tables, st.Searches, st.Mutations, st.Cache.Hits, st.Cache.Misses, st.Cache.Entries)
}

func rows(t *table.Table) [][]string {
	out := make([][]string, t.NumRows())
	for i := range out {
		out[i] = t.Row(i)
	}
	return out
}
