// Mythology: the paper's Fig. 12 anecdote. A mythology query table is
// searched against a small lake; Starmie's top tuples repeat creatures the
// query already lists (Minotaur, Chimera, Basilisk), while DUST surfaces
// new creatures from other cultures.
package main

import (
	"fmt"
	"log"
	"strings"

	"dust"
	"dust/internal/lake"
	"dust/internal/search"
	"dust/internal/table"
)

func main() {
	query := table.New("mythology_query", "Myth", "Definition", "Synonyms", "Origin")
	query.MustAppendRow("Chimera", "Monstrous", "Fabulous creature", "Greek")
	query.MustAppendRow("Siren", "Half-human", "Harpy, Lorelei", "Greek")
	query.MustAppendRow("Basilisk", "King serpent", "Cockatrice", "Greek, Roman")
	query.MustAppendRow("Minotaur", "Human-bull", "Man bull, Asterius", "Greek")
	query.MustAppendRow("Cyclops", "One-eyed", "Polyphemus", "Greek")

	l := lake.New("myths")
	// A redundant table: overlaps the query heavily.
	t1 := table.New("greek_myths", "Myth", "Definition", "Synonyms", "Origin")
	t1.MustAppendRow("Minotaur", "Human-bull", "Man bull, Asterius", "Greek")
	t1.MustAppendRow("Chimera", "Monstrous", "Fabulous creature", "Greek")
	t1.MustAppendRow("Basilisk", "King serpent", "Cockatrice", "Greek, Roman")
	t1.MustAppendRow("Griffon", "Winged lion", "Perseus, Chimaera", "Greek")
	t1.MustAppendRow("Minotaur", "Half bull", "-", "Greek")
	l.MustAdd(t1)
	// A novel table: creatures from other cultures.
	t2 := table.New("world_myths", "Creature", "Description", "Also Known As", "Culture")
	t2.MustAppendRow("Mugo", "Forest dweller", "Tenkou", "Japanese")
	t2.MustAppendRow("Kasha", "Fire-cart", "Bikuni-Kasha", "Japanese")
	t2.MustAppendRow("Succubus", "Female demon", "Lilin, Incubus", "Jewish, Christian")
	t2.MustAppendRow("Hag", "Witch", "Baba Yaga", "Scottish")
	t2.MustAppendRow("Wendigo", "Hungering ghost", "Witiko", "Algonquian")
	l.MustAdd(t2)

	// Starmie tuple search: similarity ranking over all lake tuples.
	ts := search.NewTupleSearch(l.Tables())
	fmt.Println("Starmie top-5 (similarity ranking):")
	for _, h := range ts.TopK(query, 5) {
		fmt.Println("   ", strings.Join(h.Table.Row(h.Row), " | "))
	}

	// DUST: diverse unionable tuples.
	res, err := dust.New(l, dust.WithTopTables(2)).Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDUST top-5 (diverse):")
	for i := 0; i < res.Tuples.NumRows(); i++ {
		fmt.Println("   ", strings.Join(res.Tuples.Row(i), " | "))
	}
	fmt.Println("\nNote how Starmie's list repeats the query's Greek creatures while")
	fmt.Println("DUST's list adds new creatures and new origins (Fig. 12).")
}
