// IMDB: the paper's §6.6 case study. Over a movie data lake, it compares
// how many NEW values each method adds to the query table's columns as k
// grows — Starmie's similarity ranking keeps re-retrieving rows the query
// already has, while DUST maximizes novel content.
package main

import (
	"fmt"
	"log"

	"dust"
	"dust/internal/datagen"
	"dust/internal/search"
	"dust/internal/table"
)

func main() {
	b := datagen.IMDB()
	q := b.Queries[0]
	fmt.Printf("query: %s (%d rows); lake: %d movie tables\n\n", q.Name, q.NumRows(), b.Lake.Len())

	pipe := dust.New(b.Lake)
	starmie := search.NewTupleSearch(b.Lake.Tables())

	fmt.Printf("%-4s %-10s %-14s %-14s\n", "k", "method", "new titles", "new languages")
	for _, k := range []int{10, 20, 30} {
		// DUST pipeline.
		res, err := pipe.Search(q, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-10s %-14d %-14d\n", k, "dust",
			countNew(q, res.Tuples, 0), countNew(q, res.Tuples, 3))

		// Starmie tuple search (similarity ranking).
		hits := starmie.TopK(q, k)
		st := table.New("starmie", q.Headers()...)
		for _, h := range hits {
			row := make(table.Tuple, q.NumCols())
			for i := 0; i < q.NumCols() && i < h.Table.NumCols(); i++ {
				row[i] = h.Table.Cell(h.Row, i)
			}
			st.MustAppendRow(row...)
		}
		fmt.Printf("%-4d %-10s %-14d %-14d\n", k, "starmie",
			countNew(q, st, 0), countNew(q, st, 3))
	}
	fmt.Println("\n(columns: 0 = Title, 3 = Language; see dustbench -exp fig8 for the full sweep)")
}

// countNew counts distinct values in column col of result that are absent
// from the query's column col.
func countNew(q, result *table.Table, col int) int {
	have := map[string]bool{}
	for _, v := range q.Columns[col].Values {
		have[v] = true
	}
	added := map[string]bool{}
	for _, v := range result.Columns[col].Values {
		if v != table.Null && !have[v] {
			added[v] = true
		}
	}
	return len(added)
}
