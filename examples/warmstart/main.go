// Warmstart: persist a built search index and reopen it without paying the
// cold indexing cost. The example generates a mythology data lake (the
// domain of the paper's Fig. 12 anecdote), saves it as CSVs, builds the
// DUST pipeline once (cold — every column of every table is embedded),
// snapshots the index with SaveIndex, and then reopens the same lake with
// LoadPipeline, comparing wall-clock times and verifying the warm pipeline
// returns exactly the cold pipeline's results.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/table"
)

// mythologyLake derives a lake of mythology tables from the synthetic
// benchmark corpus.
func mythologyLake() *lake.Lake {
	b := datagen.Generate("myth-bench", datagen.Config{
		Seed: 2026, TablesPerBase: 20, BaseRows: 160, MinRows: 30, MaxRows: 80,
	})
	l := lake.New("mythology")
	for _, t := range b.Lake.Tables() {
		if strings.HasPrefix(t.Name, "mythology_") {
			l.MustAdd(t)
		}
	}
	return l
}

func mythologyQuery() *table.Table {
	q := table.New("mythology_query", "Myth", "Definition", "Synonyms", "Origin")
	q.MustAppendRow("Chimera", "Monstrous", "Fabulous creature", "Greek")
	q.MustAppendRow("Siren", "Half-human", "Harpy, Lorelei", "Greek")
	q.MustAppendRow("Basilisk", "King serpent", "Cockatrice", "Greek, Roman")
	q.MustAppendRow("Minotaur", "Human-bull", "Man bull, Asterius", "Greek")
	q.MustAppendRow("Cyclops", "One-eyed", "Polyphemus", "Greek")
	return q
}

func main() {
	dir, err := os.MkdirTemp("", "dust-warmstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lakeDir := filepath.Join(dir, "lake")
	idxDir := filepath.Join(dir, "index")

	if err := mythologyLake().Save(lakeDir); err != nil {
		log.Fatal(err)
	}
	query := mythologyQuery()

	// Cold start: load the CSVs and build the index from scratch.
	t0 := time.Now()
	l, err := lake.Load(lakeDir)
	if err != nil {
		log.Fatal(err)
	}
	cold := dust.New(l)
	coldElapsed := time.Since(t0)
	fmt.Printf("cold start (%s): %v\n", l.Stats(), coldElapsed.Round(time.Millisecond))

	if err := cold.SaveIndex(idxDir); err != nil {
		log.Fatal(err)
	}
	var indexBytes int64
	filepath.Walk(idxDir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			indexBytes += info.Size()
		}
		return nil
	})
	fmt.Printf("saved index: %d KB in %s\n", indexBytes/1024, idxDir)

	// Warm start: load the CSVs and the prebuilt index.
	t0 = time.Now()
	warm, err := dust.LoadPipeline(lakeDir, idxDir)
	if err != nil {
		log.Fatal(err)
	}
	warmElapsed := time.Since(t0)
	fmt.Printf("warm start: %v (%.1fx faster)\n",
		warmElapsed.Round(time.Millisecond), float64(coldElapsed)/float64(warmElapsed))

	// Same index state means identical results.
	want, err := cold.Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	got, err := warm.Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < want.Tuples.NumRows(); i++ {
		if strings.Join(got.Tuples.Row(i), "|") != strings.Join(want.Tuples.Row(i), "|") {
			log.Fatalf("warm result row %d differs from cold", i)
		}
	}
	fmt.Println("\nwarm pipeline reproduces the cold pipeline exactly; top diverse tuples:")
	fmt.Println("  " + strings.Join(got.Tuples.Headers(), " | "))
	for i := 0; i < got.Tuples.NumRows(); i++ {
		fmt.Printf("  %s   (from %s)\n",
			strings.Join(got.Tuples.Row(i), " | "), got.Provenance[i].Table)
	}
}
