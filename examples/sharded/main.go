// Sharded: partition a lake into scatter-gather shards and verify the
// sharded pipeline reproduces the monolithic one bit-for-bit. The example
// generates a benchmark lake, builds the pipeline twice — monolithic and
// WithShards(4) — compares end-to-end Search results and latency, saves
// the sharded index (one shard-NNN.dustidx per shard plus the manifest's
// shard map), and warm-starts it back, showing that the shard layout
// survives the round trip and the warm pipeline answers identically.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/lake"
)

const shards = 4

func main() {
	b := datagen.Generate("shard-example", datagen.Config{
		Seed: 2026, Domains: 6, TablesPerBase: 30, QueriesPerBase: 1,
		BaseRows: 60, MinRows: 10, MaxRows: 25,
	})
	query := b.Queries[0]

	dir, err := os.MkdirTemp("", "dust-sharded-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lakeDir := filepath.Join(dir, "lake")
	idxDir := filepath.Join(dir, "index")
	if err := b.Lake.Save(lakeDir); err != nil {
		log.Fatal(err)
	}

	// Monolithic baseline.
	t0 := time.Now()
	mono := dust.New(b.Lake)
	monoBuild := time.Since(t0)
	t0 = time.Now()
	want, err := mono.Search(query, 8)
	if err != nil {
		log.Fatal(err)
	}
	monoQuery := time.Since(t0)
	fmt.Printf("monolithic: indexed %s in %v, query %v\n",
		b.Lake.Stats(), monoBuild.Round(time.Millisecond), monoQuery.Round(time.Millisecond))

	// Sharded: same lake, hash-partitioned into independent sub-indexes.
	t0 = time.Now()
	sharded := dust.New(b.Lake, dust.WithShards(shards))
	shardBuild := time.Since(t0)
	t0 = time.Now()
	got, err := sharded.Search(query, 8)
	if err != nil {
		log.Fatal(err)
	}
	shardQuery := time.Since(t0)
	fmt.Printf("sharded(%d): indexed in %v, scatter-gather query %v\n",
		sharded.Shards(), shardBuild.Round(time.Millisecond), shardQuery.Round(time.Millisecond))

	mustMatch(want, got, "sharded vs monolithic")
	fmt.Println("sharded pipeline reproduces the monolithic pipeline exactly")

	// Persist the shard layout and warm-start it back.
	if err := sharded.SaveIndex(idxDir); err != nil {
		log.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(idxDir, "shard-*.dustidx"))
	fmt.Printf("\nsaved sharded index: %d shard files + manifest in %s\n", len(files), idxDir)

	t0 = time.Now()
	l, err := lake.Load(lakeDir)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := dust.LoadPipelineLake(l, idxDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm start: %d shard(s) restored in %v\n",
		warm.Shards(), time.Since(t0).Round(time.Millisecond))
	warmRes, err := warm.Search(query, 8)
	if err != nil {
		log.Fatal(err)
	}
	mustMatch(want, warmRes, "warm sharded vs monolithic")

	fmt.Println("\nwarm sharded pipeline answers identically; top diverse tuples:")
	fmt.Println("  " + strings.Join(warmRes.Tuples.Headers(), " | "))
	for i := 0; i < warmRes.Tuples.NumRows(); i++ {
		fmt.Printf("  %s   (from %s)\n",
			strings.Join(warmRes.Tuples.Row(i), " | "), warmRes.Provenance[i].Table)
	}
}

func mustMatch(want, got *dust.Result, label string) {
	if want.Tuples.NumRows() != got.Tuples.NumRows() {
		log.Fatalf("%s: %d rows vs %d", label, got.Tuples.NumRows(), want.Tuples.NumRows())
	}
	for i := 0; i < want.Tuples.NumRows(); i++ {
		if strings.Join(got.Tuples.Row(i), "|") != strings.Join(want.Tuples.Row(i), "|") {
			log.Fatalf("%s: row %d differs", label, i)
		}
	}
}
