package dust

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dust/internal/codec"
	"dust/internal/lake"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/shard"
	"dust/internal/table"
)

// ManifestFormatVersion is the index-directory manifest payload version.
// Version 2 appended the pipeline's mutation epoch; version 3 appended the
// staged-retrieval state (whether the searcher runs in ANN mode and
// whether an HNSW graph file sits alongside the searcher index); version 4
// appended the shard map (shard count plus each shard's table list — zero
// shards means a monolithic index). Older manifests still load: their
// epoch reads as 0, their mode as exact, and their layout as monolithic.
const ManifestFormatVersion uint16 = 4

// Index-directory layout. The manifest is written last so a directory with
// a partial save (crash mid-write) is treated as having no index at all.
// A monolithic index stores its searcher as searcher.dustidx (plus
// ann.dustidx for a saved HNSW graph); a sharded index stores one
// shard-NNN.dustidx per shard (plus shard-NNN.ann.dustidx), with the shard
// map recorded in the manifest.
const (
	manifestFile = "manifest.dustidx"
	searcherFile = "searcher.dustidx"
	annFile      = "ann.dustidx"
	modelFile    = "tuple.model"
)

// shardSearcherFile names shard i's searcher index file.
func shardSearcherFile(i int) string { return fmt.Sprintf("shard-%03d.dustidx", i) }

// shardANNFile names shard i's HNSW candidate-graph file.
func shardANNFile(i int) string { return fmt.Sprintf("shard-%03d.ann.dustidx", i) }

// Typed failures of the pipeline persistence and mutation surfaces.
var (
	// ErrNoIndex reports a LoadPipeline directory without a manifest.
	ErrNoIndex = errors.New("dust: no saved index in directory")
	// ErrUnsupportedSearcher reports SaveIndex on a pipeline whose
	// searcher has no persistent form (only the built-in Starmie and D3L
	// searchers do).
	ErrUnsupportedSearcher = errors.New("dust: searcher does not support persistence")
	// ErrNotIncremental reports AddTable/RemoveTable on a pipeline whose
	// searcher does not implement search.Incremental.
	ErrNotIncremental = errors.New("dust: searcher does not support incremental updates")
	// ErrNotCloneable reports Clone on a pipeline whose searcher does not
	// implement search.Cloner (the built-in Starmie and D3L searchers do).
	ErrNotCloneable = errors.New("dust: searcher does not support cloning")
	// ErrShardLayout reports a sharded index directory whose shard files
	// do not match the manifest's recorded shard map — most often a shard
	// count mismatch (files missing after a partial copy, or a manifest
	// from a different save).
	ErrShardLayout = errors.New("dust: shard files do not match the saved shard map")
)

// Lake returns the data lake this pipeline searches.
func (p *Pipeline) Lake() *lake.Lake { return p.lake }

// Shards reports how many index shards back the pipeline's searcher: 1 for
// a monolithic index (the default), n for a WithShards(n) or warm-started
// sharded layout.
func (p *Pipeline) Shards() int {
	if s, ok := p.searcher.(*shard.Searcher); ok {
		return s.NumShards()
	}
	return 1
}

// Epoch returns the pipeline's index mutation epoch: 0 for a freshly built
// pipeline (or the saved epoch for one warm-started from an index
// directory), incremented by every successful AddTable/RemoveTable and
// carried over by Clone. Two pipeline states with different epochs may rank
// queries differently, so serving layers key their result caches by it.
func (p *Pipeline) Epoch() uint64 { return p.epoch }

// Clone returns an independently mutable copy of the pipeline: the lake and
// the searcher's mutable containers are copied while the heavy immutable
// index state (embedding vectors, signatures) is shared, so the clone costs
// O(tables), not O(index). AddTable/RemoveTable on the clone leave the
// original — and any queries in flight against it — untouched, which is
// what lets a serving layer apply mutations on a copy-on-write shadow and
// atomically swap it in. Requires a search.Cloner searcher.
func (p *Pipeline) Clone() (*Pipeline, error) {
	cl, ok := p.searcher.(search.Cloner)
	if !ok {
		return nil, fmt.Errorf("dust: Clone: %T: %w", p.searcher, ErrNotCloneable)
	}
	c := *p
	c.lake = p.lake.Clone()
	c.searcher = cl.CloneWithLake(c.lake)
	return &c, nil
}

// AddTable adds a table to the lake and, via the searcher's delta update,
// to the search index — no rebuild. Query results afterwards are
// bit-identical to a pipeline constructed from scratch over the grown lake.
func (p *Pipeline) AddTable(t *table.Table) error {
	inc, ok := p.searcher.(search.Incremental)
	if !ok {
		return fmt.Errorf("dust: AddTable: %T: %w", p.searcher, ErrNotIncremental)
	}
	if err := p.lake.Add(t); err != nil {
		return err
	}
	if err := inc.AddTable(t); err != nil {
		// Keep lake and index in sync: a table the index refused must not
		// linger in the lake (the lake Add above was this call's own).
		_ = p.lake.Remove(t.Name)
		return err
	}
	p.epoch++
	return nil
}

// RemoveTable removes a table from the search index and the lake, costing
// O(delta) instead of a rebuild.
func (p *Pipeline) RemoveTable(name string) error {
	inc, ok := p.searcher.(search.Incremental)
	if !ok {
		return fmt.Errorf("dust: RemoveTable: %T: %w", p.searcher, ErrNotIncremental)
	}
	// Reject up front a table the lake does not hold, before the index is
	// touched: not every searcher consults the lake on removal, and a
	// half-applied removal would leave the index and lake disagreeing.
	if p.lake.Get(name) == nil {
		return fmt.Errorf("dust: RemoveTable: %w: %q", lake.ErrUnknownTable, name)
	}
	// Searchers un-index while the table is still in the lake (Starmie has
	// to retire its columns from the corpus).
	if err := inc.RemoveTable(name); err != nil {
		return err
	}
	// The index has mutated: bump the epoch before the lake sync so an
	// epoch-keyed cache can never conflate the new index state with the
	// old, even if the (practically impossible, membership was checked
	// above) lake removal fails.
	p.epoch++
	return p.lake.Remove(name)
}

// searcherKind names the persistent form of the pipeline's searcher (the
// base kind for a sharded layout; the manifest's shard map, not the kind,
// records shardedness).
func (p *Pipeline) searcherKind() (string, error) {
	switch s := p.searcher.(type) {
	case *search.Starmie:
		return "starmie", nil
	case *search.D3L:
		return "d3l", nil
	case *shard.Searcher:
		switch s.Kind() {
		case shard.KindStarmie, shard.KindD3L:
			return s.Kind(), nil
		}
		return "", fmt.Errorf("dust: sharded %q: %w", s.Kind(), ErrUnsupportedSearcher)
	default:
		return "", fmt.Errorf("dust: %T: %w", p.searcher, ErrUnsupportedSearcher)
	}
}

// SaveIndex persists the pipeline's index state under dir so a later
// LoadPipeline can skip the cold rebuild: the searcher index (versioned,
// checksummed; one file per shard for a sharded layout), the fine-tuned
// tuple model when one is installed, and a manifest recording the searcher
// kind, the lake's table set, and the shard map.
func (p *Pipeline) SaveIndex(dir string) error {
	kind, err := p.searcherKind()
	if err != nil {
		return err
	}
	sh, sharded := p.searcher.(*shard.Searcher)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Retire any existing manifest before touching component files: the
	// manifest is the marker of a complete save, so a crash mid-overwrite
	// must leave a directory that reads as "no index", never as the old
	// manifest over new component files.
	if err := os.Remove(filepath.Join(dir, manifestFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dust: save index: %w", err)
	}
	// Drop every shard file of an earlier save (and, for a sharded save,
	// the monolithic files) so the directory mirrors exactly this save —
	// a layout change must never leave orphans for a later load to trip
	// over.
	stale, _ := filepath.Glob(filepath.Join(dir, "shard-*.dustidx"))
	if sharded {
		stale = append(stale, filepath.Join(dir, searcherFile), filepath.Join(dir, annFile))
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("dust: save index: %w", err)
		}
	}

	if sharded {
		for i := 0; i < sh.NumShards(); i++ {
			i := i
			if err := writeFile(filepath.Join(dir, shardSearcherFile(i)), func(f io.Writer) error {
				return sh.SaveShard(i, f)
			}); err != nil {
				return fmt.Errorf("dust: save shard %d: %w", i, err)
			}
		}
	} else if err := writeFile(filepath.Join(dir, searcherFile), func(f io.Writer) error {
		switch s := p.searcher.(type) {
		case *search.Starmie:
			return s.Save(f)
		case *search.D3L:
			return s.Save(f)
		}
		panic("unreachable: searcherKind accepted " + kind)
	}); err != nil {
		return fmt.Errorf("dust: save index: %w", err)
	}
	m, hasModel := p.tupleEnc.(*model.Model)
	if hasModel {
		if err := writeFile(filepath.Join(dir, modelFile), m.Save); err != nil {
			return fmt.Errorf("dust: save model: %w", err)
		}
	} else if err := os.Remove(filepath.Join(dir, modelFile)); err != nil && !os.IsNotExist(err) {
		// A model file from an earlier save of a model-bearing pipeline
		// would be orphaned; drop it so the directory mirrors this save.
		return fmt.Errorf("dust: save index: %w", err)
	}

	// Staged retrieval state: the HNSW graphs (Starmie only — D3L's
	// approximate backend is its LSH index, already rebuilt from the
	// searcher file) persist beside the searcher index so an ANN warm
	// start skips the graph builds too. A sharded layout saves one graph
	// per shard; hasANN means every shard carries one.
	annMode := false
	if st, ok := p.searcher.(search.Staged); ok {
		annMode = st.RetrievalMode() == search.ANN
	}
	hasANN := false
	switch {
	case sharded && kind == shard.KindStarmie:
		hasANN = true
		for i := 0; i < sh.NumShards(); i++ {
			if !sh.Shard(i).(*search.Starmie).HasANN() {
				hasANN = false
				break
			}
		}
		if hasANN {
			for i := 0; i < sh.NumShards(); i++ {
				st := sh.Shard(i).(*search.Starmie)
				if err := writeFile(filepath.Join(dir, shardANNFile(i)), st.SaveANN); err != nil {
					return fmt.Errorf("dust: save shard %d ann graph: %w", i, err)
				}
			}
		}
	case !sharded:
		if s, ok := p.searcher.(*search.Starmie); ok && s.HasANN() {
			hasANN = true
			if err := writeFile(filepath.Join(dir, annFile), s.SaveANN); err != nil {
				return fmt.Errorf("dust: save ann graph: %w", err)
			}
		} else if err := os.Remove(filepath.Join(dir, annFile)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("dust: save index: %w", err)
		}
	}

	var b codec.Buffer
	b.String(kind)
	b.String(p.lake.Name)
	b.Strings(p.lake.Names())
	b.Bool(hasModel)
	b.Uvarint(p.epoch)
	b.Bool(annMode)
	b.Bool(hasANN)
	// v4: the shard map. Zero shards marks a monolithic index; n >= 1
	// promises shard-000..shard-(n-1) files, each covering the recorded
	// table list (in sub-lake iteration order, which the loaders rebuild
	// the partition in).
	if sharded {
		b.Uvarint(uint64(sh.NumShards()))
		for _, names := range sh.ShardTables() {
			b.Strings(names)
		}
	} else {
		b.Uvarint(0)
	}
	if err := writeFile(filepath.Join(dir, manifestFile), func(f io.Writer) error {
		return codec.WriteEnvelope(f, codec.KindManifest, ManifestFormatVersion, b.Bytes())
	}); err != nil {
		return fmt.Errorf("dust: save manifest: %w", err)
	}
	return nil
}

// HasIndex reports whether dir holds a complete saved index (a manifest is
// only written after every component file).
func HasIndex(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestFile))
	return err == nil
}

// LoadPipeline reconstructs a pipeline from lake CSVs plus an index
// directory written by SaveIndex, skipping the cold index build. The lake
// must hold exactly the table set recorded in the manifest (the loaders
// also self-validate); options apply on top of the restored searcher and
// model, so e.g. WithWorkers re-bounds query parallelism as usual.
func LoadPipeline(lakeDir, indexDir string, opts ...Option) (*Pipeline, error) {
	l, err := lake.Load(lakeDir)
	if err != nil {
		return nil, fmt.Errorf("dust: load lake: %w", err)
	}
	return LoadPipelineLake(l, indexDir, opts...)
}

// LoadPipelineLake is LoadPipeline for a lake already in memory.
func LoadPipelineLake(l *lake.Lake, indexDir string, opts ...Option) (*Pipeline, error) {
	mf, err := os.Open(filepath.Join(indexDir, manifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("dust: %s: %w", indexDir, ErrNoIndex)
		}
		return nil, err
	}
	version, payload, err := codec.ReadEnvelope(mf, codec.KindManifest, ManifestFormatVersion)
	mf.Close()
	if err != nil {
		return nil, fmt.Errorf("dust: load manifest: %w", err)
	}
	sc := codec.NewScanner(payload)
	kind := sc.String()
	_ = sc.String() // saved lake name; informational only
	names := sc.Strings()
	hasModel := sc.Bool()
	var epoch uint64
	if version >= 2 {
		epoch = sc.Uvarint()
	}
	annMode, hasANN := false, false
	if version >= 3 {
		annMode = sc.Bool()
		hasANN = sc.Bool()
	}
	var shardTables [][]string
	if version >= 4 {
		numShards := sc.Uvarint()
		// A hostile manifest could declare an absurd shard count; cap it
		// well above any real deployment. Empty shards are legal (a lake
		// smaller than its shard count saves and loads fine), so the cap
		// must not depend on the table count.
		const maxShards = 1 << 16
		if sc.Err() == nil && numShards > maxShards {
			return nil, fmt.Errorf("dust: load manifest: %d shards exceeds the %d cap: %w",
				numShards, maxShards, codec.ErrCorrupt)
		}
		for i := uint64(0); i < numShards && sc.Err() == nil; i++ {
			shardTables = append(shardTables, sc.Strings())
		}
	}
	if err := sc.Finish(); err != nil {
		return nil, fmt.Errorf("dust: load manifest: %w", err)
	}
	if len(names) != l.Len() {
		return nil, fmt.Errorf("dust: index holds %d tables, lake holds %d: %w",
			len(names), l.Len(), search.ErrLakeMismatch)
	}
	for _, name := range names {
		if l.Get(name) == nil {
			return nil, fmt.Errorf("dust: indexed table %q not in lake: %w", name, search.ErrLakeMismatch)
		}
	}

	var searcher search.Searcher
	if len(shardTables) > 0 {
		searcher, err = loadShardedSearcher(indexDir, kind, shardTables, l, hasANN)
		if err != nil {
			return nil, err
		}
	} else {
		sf, err := os.Open(filepath.Join(indexDir, searcherFile))
		if err != nil {
			return nil, fmt.Errorf("dust: load index: %w", err)
		}
		switch kind {
		case "starmie":
			searcher, err = search.LoadStarmie(sf, l)
		case "d3l":
			searcher, err = search.LoadD3L(sf, l)
		default:
			err = fmt.Errorf("dust: manifest names unknown searcher kind %q: %w", kind, codec.ErrCorrupt)
		}
		sf.Close()
		if err != nil {
			return nil, err
		}
		if hasANN {
			s, ok := searcher.(*search.Starmie)
			if !ok {
				return nil, fmt.Errorf("dust: manifest records an ann graph for searcher kind %q: %w",
					kind, codec.ErrCorrupt)
			}
			af, err := os.Open(filepath.Join(indexDir, annFile))
			if err != nil {
				return nil, fmt.Errorf("dust: load ann graph: %w", err)
			}
			err = s.LoadANN(af)
			af.Close()
			if err != nil {
				return nil, err
			}
		}
	}

	loaded := []Option{WithSearcher(searcher)}
	if annMode {
		// Restore the saved retrieval mode; SetMode reuses the graph just
		// installed (or, for D3L / a graphless save, rebuilds cheaply).
		// Explicit caller options apply afterwards and win as usual.
		loaded = append(loaded, WithRetriever(search.ANN))
	}
	if hasModel {
		f, err := os.Open(filepath.Join(indexDir, modelFile))
		if err != nil {
			return nil, fmt.Errorf("dust: load model: %w", err)
		}
		m, err := model.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dust: load model: %w", err)
		}
		loaded = append(loaded, WithTupleEncoder(m))
	}
	p := New(l, append(loaded, opts...)...)
	// Resume the saved mutation epoch so serving-layer caches keyed by
	// (fingerprint, epoch) stay distinct across a save/load cycle.
	p.epoch = epoch
	return p, nil
}

// loadShardedSearcher reconstitutes a sharded searcher from per-shard
// index files: the manifest's shard map rebuilds each sub-lake (tables in
// their saved order), every shard file loads against its own sub-lake
// (self-validating: encoder fingerprint, table set, checksums), per-shard
// ANN graphs install when the manifest promises them, and shard.Assemble
// re-binds the set to one shared corpus. A shard file missing for a
// recorded shard is ErrShardLayout — the count in the manifest and the
// files on disk disagree.
func loadShardedSearcher(indexDir, kind string, shardTables [][]string, l *lake.Lake, hasANN bool) (search.Searcher, error) {
	parts := make([]shard.Part, len(shardTables))
	for i, names := range shardTables {
		sl := lake.New(fmt.Sprintf("%s#%d", l.Name, i))
		for _, name := range names {
			t := l.Get(name)
			if t == nil {
				return nil, fmt.Errorf("dust: shard %d table %q not in lake: %w", i, name, search.ErrLakeMismatch)
			}
			if err := sl.Add(t); err != nil {
				return nil, fmt.Errorf("dust: shard %d map: %v: %w", i, err, codec.ErrCorrupt)
			}
		}
		sf, err := os.Open(filepath.Join(indexDir, shardSearcherFile(i)))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("dust: shard %d/%d missing %s: %w",
					i, len(shardTables), shardSearcherFile(i), ErrShardLayout)
			}
			return nil, fmt.Errorf("dust: load shard %d: %w", i, err)
		}
		var sub search.Searcher
		switch kind {
		case shard.KindStarmie:
			sub, err = search.LoadStarmie(sf, sl)
		case shard.KindD3L:
			sub, err = search.LoadD3L(sf, sl)
		default:
			err = fmt.Errorf("dust: manifest names unknown searcher kind %q: %w", kind, codec.ErrCorrupt)
		}
		sf.Close()
		if err != nil {
			return nil, fmt.Errorf("dust: load shard %d: %w", i, err)
		}
		if hasANN {
			st, ok := sub.(*search.Starmie)
			if !ok {
				return nil, fmt.Errorf("dust: manifest records ann graphs for searcher kind %q: %w",
					kind, codec.ErrCorrupt)
			}
			af, err := os.Open(filepath.Join(indexDir, shardANNFile(i)))
			if err != nil {
				if os.IsNotExist(err) {
					return nil, fmt.Errorf("dust: shard %d missing %s: %w",
						i, shardANNFile(i), ErrShardLayout)
				}
				return nil, fmt.Errorf("dust: load shard %d ann graph: %w", i, err)
			}
			err = st.LoadANN(af)
			af.Close()
			if err != nil {
				return nil, fmt.Errorf("dust: load shard %d: %w", i, err)
			}
		}
		parts[i] = shard.Part{Lake: sl, Searcher: sub}
	}
	s, err := shard.Assemble(l, kind, parts, shard.Config{})
	if err != nil {
		// Keeps shard.ErrLayoutMismatch reachable through errors.Is.
		return nil, fmt.Errorf("dust: load sharded index: %w", err)
	}
	return s, nil
}

// writeFile creates path, streams content through write, and closes it,
// reporting the first error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
